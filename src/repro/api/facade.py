"""Top-level entry points of the unified solver API.

* :func:`get_solver` — registry-backed solver construction (every method
  name/alias the CLI accepts).
* :func:`as_solver` — adapt anything with a ``partition(graph, seed)``
  method onto the :class:`Solver` protocol (the bench harness uses this
  for its prebuilt rows).
* :func:`solve` — one-call convenience: build, start, run, report.
* :func:`resume` — rebuild a session from a checkpoint dict and the
  graph it was solving.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

from repro.common.exceptions import CheckpointError
from repro.common.rng import SeedLike
from repro.graph.graph import Graph
from repro.api.events import SolveEvent
from repro.api.request import Budget, SolveReport, SolveRequest
from repro.api.session import CHECKPOINT_SCHEMA, OneShotSession, SolveSession

__all__ = ["Solver", "get_solver", "as_solver", "solve", "resume"]


@runtime_checkable
class Solver(Protocol):
    """The one protocol every partitioner family implements.

    ``start`` opens a :class:`~repro.api.session.SolveSession` for a
    request (optionally resuming a checkpoint); ``name`` is the
    canonical registry name.  The legacy ``partition(graph, seed)``
    entry points survive as thin deprecated shims over ``start``.
    """

    name: str

    def start(
        self, request: SolveRequest, checkpoint: dict | None = None
    ) -> SolveSession:
        ...


def get_solver(method: str, k: int, **options: Any) -> Solver:
    """Build a solver by registry name (aliases accepted).

    Identical to :func:`repro.bench.registry.make_partitioner` — every
    registered partitioner now implements the :class:`Solver` protocol.
    """
    from repro.bench.registry import make_partitioner

    return make_partitioner(method, k, **options)


class _LegacySolverAdapter:
    """Wrap a bare ``partition(graph, seed)`` object onto the protocol.

    Used for third-party/prebuilt partitioners that predate the session
    API.  The whole construction runs as one session iteration; the
    wrapped object's own ``k`` is authoritative (exactly as the engine's
    prebuilt-spec path always behaved).
    """

    def __init__(self, partitioner: Any) -> None:
        self.partitioner = partitioner
        self.name = getattr(
            partitioner, "name", type(partitioner).__name__
        )

    def start(
        self, request: SolveRequest, checkpoint: dict | None = None
    ) -> SolveSession:
        return OneShotSession(
            self,
            request,
            checkpoint,
            build=lambda req, rng: self.partitioner.partition(
                req.graph, seed=rng
            ),
        )


def as_solver(obj: Any) -> Solver:
    """Coerce ``obj`` to the :class:`Solver` protocol.

    Objects that already expose ``start`` pass through; anything with a
    ``partition`` method is wrapped in a one-shot adapter.
    """
    if hasattr(obj, "start"):
        return obj
    if hasattr(obj, "partition"):
        return _LegacySolverAdapter(obj)
    raise TypeError(
        f"{type(obj).__name__} is neither a Solver (no .start) nor a "
        "legacy partitioner (no .partition)"
    )


def solve(
    graph: Graph,
    k: int,
    method: str = "fusion-fission",
    *,
    objective: str | None = None,
    seed: SeedLike = None,
    budget: Budget | None = None,
    balance_tolerance: float | None = None,
    observers: tuple[Callable[[SolveEvent], None], ...] = (),
    name: str = "graph",
    islands: int = 1,
    migration_interval: int = 10,
    island_jobs: int = 1,
    **options: Any,
) -> SolveReport:
    """One-call solve: build the solver, run a session, return the report.

    Extra ``options`` go to the solver constructor (e.g.
    ``max_steps=500`` for fusion–fission); ``islands``/
    ``migration_interval``/``island_jobs`` configure island-model
    execution for the iterative families (see
    :class:`~repro.api.request.SolveRequest`).

    Examples
    --------
    >>> from repro.graph import weighted_caveman_graph
    >>> from repro.api import solve
    >>> report = solve(weighted_caveman_graph(4, 6), k=4,
    ...                method="multilevel", seed=0)
    >>> report.status
    'done'
    >>> report.partition.num_parts
    4
    """
    solver = get_solver(method, k, **options)
    request = SolveRequest(
        graph=graph,
        k=k,
        objective=objective,
        balance_tolerance=balance_tolerance,
        seed=seed,
        budget=budget or Budget(),
        name=name,
        islands=islands,
        migration_interval=migration_interval,
        island_jobs=island_jobs,
    )
    session = solver.start(request)
    for observer in observers:
        session.subscribe(observer)
    return session.run()


def resume(
    graph: Graph,
    checkpoint: dict,
    *,
    budget: Budget | None = None,
    observers: tuple[Callable[[SolveEvent], None], ...] = (),
    island_jobs: int = 1,
) -> SolveSession:
    """Rebuild a paused session from a checkpoint dict.

    The checkpoint stores the method name and constructor options, so
    only the graph (never serialised) must be supplied.  The returned
    session continues exactly where :meth:`SolveSession.checkpoint` left
    off — same seed + same checkpoint → same final partition.  Island
    checkpoints resume with their recorded island layout;
    ``island_jobs`` only picks the execution mode, which never changes
    the result.
    """
    if not isinstance(checkpoint, dict):
        raise CheckpointError(
            f"checkpoint must be a dict, got {type(checkpoint).__name__}"
        )
    if checkpoint.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"unsupported checkpoint schema {checkpoint.get('schema')!r} "
            f"(expected {CHECKPOINT_SCHEMA!r})"
        )
    try:
        method = checkpoint["method"]
        k = int(checkpoint["k"])
        options = dict(checkpoint.get("options") or {})
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint header is malformed: {type(exc).__name__}: {exc}"
        ) from exc
    try:
        solver = get_solver(method, k, **options)
    except TypeError as exc:
        # e.g. a tampered checkpoint whose options belong to a different
        # method than its header claims.
        raise CheckpointError(
            f"checkpoint options do not fit method {method!r}: {exc}"
        ) from exc
    request = SolveRequest(
        graph=graph,
        k=k,
        objective=checkpoint.get("objective"),
        seed=None,  # the restored rng state is authoritative
        budget=budget or Budget(),
        name=checkpoint.get("name", "graph"),
        islands=int(checkpoint.get("islands", 1) or 1),
        migration_interval=int(checkpoint.get("migration_interval", 10) or 10),
        island_jobs=island_jobs,
    )
    session = solver.start(request, checkpoint=checkpoint)
    for observer in observers:
        session.subscribe(observer)
    return session
