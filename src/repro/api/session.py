"""Run sessions: stepping, events, budgets, checkpoint/resume.

A :class:`SolveSession` is the live execution of one
:class:`~repro.api.request.SolveRequest` by one solver.  It is created by
``solver.start(request)`` and drives the solver's stepper through
:meth:`step`/:meth:`run`, emitting :class:`~repro.api.events.SolveEvent`
records to registered observers, honouring wall-clock/iteration budgets
with cooperative pause semantics, and serialising its full state into a
JSON checkpoint that :func:`repro.api.resume` restores deterministically.

Determinism contract
--------------------
For a session over a graph with **integral edge weights** (every graph
the test suite pins seeds on), the following three runs produce
bit-identical final partitions:

1. the deprecated ``partitioner.partition(graph, seed)`` shim,
2. ``solver.start(request).run()`` uninterrupted,
3. run-to-iteration-``i`` → ``checkpoint()`` → JSON round-trip →
   ``resume`` → ``run()``.

The shims guarantee (1)≡(2) structurally — they *are* session runs.  For
(3) the checkpoint stores the numpy bit-generator state verbatim plus
every float the solver threads through comparisons (energies are
round-tripped exactly by JSON's shortest-repr float encoding); partitions
are rebuilt from their assignment arrays, whose derived aggregates are
exact for integral weights regardless of summation order.  Graphs with
arbitrary float weights resume to within accumulation ulps — documented,
not guaranteed bit-for-bit.

Wall-clock budgets restart from the checkpointed *cumulative* elapsed
time, so ``Budget(max_seconds=10)`` spans resumes too.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Any, Callable

import numpy as np

from repro.common.exceptions import (
    CheckpointError,
    ConfigurationError,
    ReproError,
)
from repro.common.rng import ensure_rng
from repro.common.timer import Deadline, Ticker
from repro.api.events import (
    EVENT_CHECKPOINT,
    EVENT_DONE,
    EVENT_HEARTBEAT,
    EVENT_INCUMBENT,
    EVENT_ITERATION,
    EVENT_PAUSE,
    EVENT_PHASE,
    EVENT_START,
    SolveEvent,
)
from repro.api.request import (
    STATUS_CANCELLED,
    STATUS_DONE,
    STATUS_RUNNING,
    SolveReport,
    SolveRequest,
)
from repro.partition.metrics import evaluate_partition
from repro.partition.partition import Partition

__all__ = [
    "SolveSession",
    "OneShotSession",
    "CHECKPOINT_SCHEMA",
    "encode_rng",
    "decode_rng",
]

CHECKPOINT_SCHEMA = "repro-solve-checkpoint/v1"

#: Sentinel distinguishing "use the request budget" from an explicit None
#: ("unlimited") in :meth:`SolveSession.run` overrides.
_UNSET: Any = object()


def encode_rng(rng: np.random.Generator) -> dict:
    """JSON-serialisable snapshot of a numpy generator's exact state.

    Captures both the bit-generator word state *and* the seed-sequence
    lineage (entropy, spawn key, children spawned): ``Generator.spawn``
    — the repository's convention for handing independent child streams
    to nested components — draws from the seed sequence, not the word
    state, so restoring only ``bit_generator.state`` would replay the
    stream but spawn different children.
    """
    state = {"state": rng.bit_generator.state}
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if isinstance(seed_seq, np.random.SeedSequence):
        entropy = seed_seq.entropy
        state["seed_seq"] = {
            "entropy": (
                list(entropy) if isinstance(entropy, (list, tuple))
                else entropy
            ),
            "spawn_key": list(seed_seq.spawn_key),
            "pool_size": seed_seq.pool_size,
            "n_children_spawned": seed_seq.n_children_spawned,
        }
    return state


def decode_rng(state: dict) -> np.random.Generator:
    """Rebuild a generator from :func:`encode_rng` output (bit-exact)."""
    try:
        word_state = state["state"]
        cls = getattr(np.random, word_state["bit_generator"])
        seed_seq_state = state.get("seed_seq")
        if seed_seq_state is not None:
            entropy = seed_seq_state["entropy"]
            seed_seq = np.random.SeedSequence(
                entropy=entropy,
                spawn_key=tuple(seed_seq_state["spawn_key"]),
                pool_size=int(seed_seq_state["pool_size"]),
                n_children_spawned=int(
                    seed_seq_state["n_children_spawned"]
                ),
            )
            bit_generator = cls(seed_seq)
        else:
            bit_generator = cls()
        bit_generator.state = word_state
    except (KeyError, TypeError, AttributeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint rng state is malformed: {type(exc).__name__}: {exc}"
        ) from exc
    return np.random.Generator(bit_generator)


class SolveSession(ABC):
    """One live solve: stepping, events, budgets, checkpointing.

    Subclasses implement the five solver hooks (``_setup``, ``_advance``,
    ``_export_state``, ``_restore_state``, ``_best_partition``) plus the
    ``phase`` attribute; everything user-facing — :meth:`step`,
    :meth:`run`, :meth:`subscribe`, :meth:`cancel`, :meth:`checkpoint`,
    :meth:`report` — lives here and behaves identically across all six
    solver families.

    Parameters
    ----------
    solver:
        The solver that created this session (exposes ``name`` and the
        configured hyper-parameters).
    request:
        The :class:`~repro.api.request.SolveRequest` being solved.
    checkpoint:
        Optional checkpoint dict (from :meth:`checkpoint`, possibly JSON
        round-tripped) to resume from instead of a fresh start.
    """

    #: Human-readable name of the phase the solver is currently in;
    #: subclasses update it through :meth:`_set_phase`.
    phase: str = "setup"

    def __init__(
        self,
        solver: Any,
        request: SolveRequest,
        checkpoint: dict | None = None,
    ) -> None:
        self.solver = solver
        self.request = request
        self.method: str = getattr(solver, "name", type(solver).__name__)
        self.status: str = STATUS_RUNNING
        self.iteration = 0
        self.events_emitted = 0
        self._observers: list[Callable[[SolveEvent], None]] = []
        self._cancelled = False
        self._heartbeat = Ticker(request.heartbeat_interval)
        self._elapsed_offset = 0.0
        self._clock_start: float | None = time.perf_counter()
        #: Island-model execution (``request.islands > 1``): the session's
        #: advance/best/checkpoint hooks route through the group instead
        #: of the family stepper.  ``islands=1`` never touches this, so
        #: the sequential path is bit-identical to before the field.
        self._islands = None
        if request.islands > 1 and not getattr(
            solver, "supports_islands", False
        ):
            raise ConfigurationError(
                f"method {self.method!r} does not support island-model "
                f"execution (requested islands={request.islands}); only "
                "the iterative families (simulated-annealing, ant-colony, "
                "fusion-fission) do"
            )
        if checkpoint is None:
            self.rng = ensure_rng(request.seed)
            if request.islands > 1:
                from repro.api.islands import IslandGroup

                self.phase = "islands"
                self._islands = IslandGroup.create(self)
            else:
                self._setup()
        else:
            self._load_checkpoint(checkpoint)
        self._clock_pause()

    # -- solver hooks ------------------------------------------------------
    @abstractmethod
    def _setup(self) -> None:
        """Build the initial solver state (fresh sessions only).

        Every random draw must go through ``self.rng`` so the session
        replays the exact stream of the legacy ``partition`` entry point.
        """

    @abstractmethod
    def _advance(self) -> bool:
        """Perform one session iteration; return True while work remains."""

    @abstractmethod
    def _export_state(self) -> dict:
        """JSON-serialisable solver state (everything but the rng)."""

    @abstractmethod
    def _restore_state(self, state: dict) -> None:
        """Inverse of :meth:`_export_state` against ``request.graph``."""

    @abstractmethod
    def _best_partition(self) -> Partition | None:
        """Best-known partition, or ``None`` before one exists."""

    def _objective_name(self) -> str:
        """Criterion name reported for this session."""
        return (
            self.request.objective
            or getattr(self.solver, "objective", None)
            or "mcut"
        )

    def _best_objective(self) -> float | None:
        """Best-known objective value (hook; default: None until done)."""
        return None

    def _progress_payload(self) -> dict:
        """Per-family extras attached to iteration events."""
        return {}

    def _adopt_incumbent(self, partition: Partition, objective: float) -> None:
        """Adopt a migrated incumbent into the live solver state.

        The island machinery calls this on a receiving island; the
        default delegates to ``adopt_incumbent`` on the family stepper
        (``self._run``), which every island-capable family implements.
        """
        run = getattr(self, "_run", None)
        if run is None or not hasattr(run, "adopt_incumbent"):
            raise ReproError(
                f"session ({self.method}) cannot adopt a migrated incumbent"
            )
        run.adopt_incumbent(partition, objective)

    # -- island routing ------------------------------------------------------
    # With ``request.islands > 1`` the family hooks above were never set
    # up — per-iteration work, bests and state live in the IslandGroup.
    # These wrappers are the single indirection everything user-facing
    # goes through.
    def _routed_best_partition(self) -> Partition | None:
        if self._islands is not None:
            return self._islands.best_partition()
        return self._best_partition()

    def _routed_best_objective(self) -> float | None:
        if self._islands is not None:
            return self._islands.best_objective()
        return self._best_objective()

    # -- observers & events ------------------------------------------------
    def subscribe(
        self, observer: Callable[[SolveEvent], None]
    ) -> Callable[[SolveEvent], None]:
        """Register an event observer; returns it for later unsubscribe."""
        self._observers.append(observer)
        return observer

    def unsubscribe(self, observer: Callable[[SolveEvent], None]) -> None:
        """Remove a previously registered observer (no-op if absent)."""
        if observer in self._observers:
            self._observers.remove(observer)

    def _emit(
        self, type_: str, objective: float | None = None, **payload: Any
    ) -> None:
        if objective is None:
            objective = self._routed_best_objective()
        event = SolveEvent(
            type=type_,
            iteration=self.iteration,
            elapsed=self.elapsed(),
            objective=objective,
            payload=payload,
        )
        self.events_emitted += 1
        for observer in list(self._observers):
            observer(event)

    def _set_phase(self, phase: str) -> None:
        """Switch phases, emitting a ``phase`` event on actual change."""
        if phase != self.phase:
            self.phase = phase
            self._emit(EVENT_PHASE, phase=phase)

    def _incumbent_improved(self, objective: float, **payload: Any) -> None:
        """Solver steppers call this whenever the best solution improves."""
        self._emit(EVENT_INCUMBENT, objective=objective, **payload)

    def chain_improvement(
        self, callback: Callable[[float, Partition], None]
    ) -> None:
        """Chain a legacy ``(value, best_partition)`` callback onto the
        session's incumbent wiring.

        Only meaningful for stepper-based sessions (the iterative
        families expose their loop as ``self._run`` with an
        ``on_improvement`` hook); the deprecated ``partition`` shims use
        this to keep their historical ``on_improvement`` argument.
        """
        run = getattr(self, "_run", None)
        if run is None:
            raise ReproError(
                f"session ({self.method}) has no incumbent stream to "
                "chain a callback onto"
            )
        emit = run.on_improvement

        def chained(value: float, best: Partition) -> None:
            if emit is not None:
                emit(value, best)
            callback(value, best)

        run.on_improvement = chained

    # -- time accounting ----------------------------------------------------
    def elapsed(self) -> float:
        """Seconds of *solve* time, cumulative across checkpoint/resume.

        The clock only runs inside setup and :meth:`step` — a session
        held paused in-process (between ``run()`` calls) accrues nothing,
        so ``Budget.max_seconds`` measures work, not idle wall time.
        """
        running = 0.0
        if self._clock_start is not None:
            running = time.perf_counter() - self._clock_start
        return self._elapsed_offset + running

    def _clock_resume(self) -> None:
        if self._clock_start is None:
            self._clock_start = time.perf_counter()

    def _clock_pause(self) -> None:
        if self._clock_start is not None:
            self._elapsed_offset += time.perf_counter() - self._clock_start
            self._clock_start = None

    # -- control ------------------------------------------------------------
    def cancel(self) -> None:
        """Request cooperative cancellation (honoured at the next
        iteration boundary; safe to call from an observer)."""
        self._cancelled = True

    @property
    def done(self) -> bool:
        """True once the solver finished naturally."""
        return self.status == STATUS_DONE

    def step(self) -> bool:
        """Advance one iteration; return True while more work remains.

        Emits one ``iteration`` event per call (plus any ``incumbent``/
        ``phase`` events the solver raised inside, and a ``heartbeat``
        at most once per ``request.heartbeat_interval`` of solve time).
        A finished or cancelled session returns False without touching
        solver state.
        """
        if self.status != STATUS_RUNNING:
            return False
        if self._cancelled:
            self.status = STATUS_CANCELLED
            return False
        self._clock_resume()
        try:
            if self._islands is not None:
                more = self._islands.advance()
                payload = self._islands.progress_payload()
            else:
                more = self._advance()
                payload = self._progress_payload()
            self.iteration += 1
            self._emit(EVENT_ITERATION, **payload)
            # Liveness signal for supervisors (the portfolio runner's
            # straggler reaper treats silence past the task timeout as a
            # hang): at most one per heartbeat_interval of solve time.
            if self._heartbeat.due(self.elapsed()):
                self._emit(EVENT_HEARTBEAT, phase=self.phase)
            if not more:
                self.status = STATUS_DONE
                self._set_phase("done")
                self._emit(EVENT_DONE)
            elif self._cancelled:
                self.status = STATUS_CANCELLED
            if self._islands is not None and self.status != STATUS_RUNNING:
                self._islands.close()
        finally:
            self._clock_pause()
        return self.status == STATUS_RUNNING

    def run(
        self,
        max_seconds: float | None = _UNSET,
        max_iterations: int | None = _UNSET,
    ) -> SolveReport:
        """Drive :meth:`step` until done, cancelled, or out of budget.

        ``max_seconds``/``max_iterations`` override the request's budget
        for this call (pass ``None`` explicitly for "unlimited"); both
        are session-total limits (iteration counts and elapsed time
        carry across resumes).  Exhausting a budget *pauses* the session
        — status stays ``running`` and a later ``run()`` (or a
        checkpoint/resume cycle) continues the work.
        """
        budget = self.request.budget
        if max_seconds is _UNSET:
            max_seconds = budget.max_seconds
        if max_iterations is _UNSET:
            max_iterations = budget.max_iterations
        self._emit(
            EVENT_START,
            method=self.method,
            k=self.request.k,
            criterion=self._objective_name(),
            resumed=self.iteration > 0,
        )
        remaining = None
        if max_seconds is not None:
            remaining = max_seconds - self.elapsed()
        deadline = Deadline(remaining)
        pause_reason = None
        while self.status == STATUS_RUNNING:
            if self._cancelled:
                self.status = STATUS_CANCELLED
                break
            if max_iterations is not None and self.iteration >= max_iterations:
                pause_reason = "iteration budget exhausted"
                break
            if deadline.expired():
                pause_reason = "time budget exhausted"
                break
            self.step()
        if self.status == STATUS_CANCELLED:
            self._emit(EVENT_PAUSE, reason="cancelled")
        elif pause_reason is not None:
            self._emit(EVENT_PAUSE, reason=pause_reason)
        return self.report()

    # -- results ------------------------------------------------------------
    @property
    def partition(self) -> Partition:
        """The best-known partition (raises before one exists)."""
        best = self._routed_best_partition()
        if best is None:
            raise ReproError(
                f"session ({self.method}) has no partition yet — "
                "run() or step() it first"
            )
        return best

    def report(self) -> SolveReport:
        """Snapshot the session into a :class:`SolveReport`."""
        best = self._routed_best_partition()
        objective = self._objective_name()
        value = self._routed_best_objective()
        metrics = None
        if best is not None:
            metrics = evaluate_partition(best)
            if value is None:
                value = float(getattr(metrics, objective))
        return SolveReport(
            method=self.method,
            status=self.status,
            objective=objective,
            objective_value=float("inf") if value is None else float(value),
            partition=best,
            metrics=metrics,
            iterations=self.iteration,
            seconds=self.elapsed(),
            events=self.events_emitted,
        )

    # -- checkpoint / resume -------------------------------------------------
    def checkpoint(self) -> dict:
        """Serialise the full session state to a JSON-compatible dict.

        The dict (schema ``repro-solve-checkpoint/v1``) carries the
        method name and constructor options needed to rebuild the
        solver, the exact rng state, and the solver's own state export —
        ``json.dumps`` → ``json.loads`` → :func:`repro.api.resume`
        continues the run deterministically.
        """
        from repro import __version__

        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "version": __version__,
            "method": self.method,
            "options": solver_options(self.solver),
            "graph": {
                "num_vertices": self.request.graph.num_vertices,
                "num_edges": self.request.graph.num_edges,
            },
            "k": self.request.k,
            "objective": self.request.objective,
            "name": self.request.name,
            "status": self.status,
            "iteration": self.iteration,
            "elapsed": self.elapsed(),
            "phase": self.phase,
            "islands": self.request.islands,
            "migration_interval": self.request.migration_interval,
            "rng": encode_rng(self.rng),
            "state": (
                self._islands.export_state()
                if self._islands is not None
                else self._export_state()
            ),
        }
        self._emit(EVENT_CHECKPOINT)
        return payload

    def _load_checkpoint(self, checkpoint: dict) -> None:
        if not isinstance(checkpoint, dict):
            raise CheckpointError(
                f"checkpoint must be a dict, got {type(checkpoint).__name__}"
            )
        schema = checkpoint.get("schema")
        if schema != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"unsupported checkpoint schema {schema!r} "
                f"(expected {CHECKPOINT_SCHEMA!r})"
            )
        method = checkpoint.get("method")
        if method != self.method:
            raise CheckpointError(
                f"checkpoint was taken by method {method!r}, "
                f"cannot resume with {self.method!r}"
            )
        if checkpoint.get("k") != self.request.k:
            raise CheckpointError(
                f"checkpoint is for k={checkpoint.get('k')}, "
                f"request asks k={self.request.k}"
            )
        fingerprint = checkpoint.get("graph")
        if fingerprint is not None:
            graph = self.request.graph
            if (
                fingerprint.get("num_vertices") != graph.num_vertices
                or fingerprint.get("num_edges") != graph.num_edges
            ):
                raise CheckpointError(
                    "checkpoint was taken on a different graph "
                    f"(n={fingerprint.get('num_vertices')}, "
                    f"m={fingerprint.get('num_edges')}; the request's has "
                    f"n={graph.num_vertices}, m={graph.num_edges})"
                )
        islands = int(checkpoint.get("islands", 1) or 1)
        if islands != self.request.islands:
            raise CheckpointError(
                f"checkpoint was taken with islands={islands}, the request "
                f"asks islands={self.request.islands} (resume carries the "
                "island layout through the checkpoint itself)"
            )
        try:
            self.rng = decode_rng(checkpoint["rng"])
            self.iteration = int(checkpoint["iteration"])
            self.status = str(checkpoint["status"])
            self._elapsed_offset = float(checkpoint.get("elapsed", 0.0))
            self.phase = str(checkpoint.get("phase", "setup"))
            if islands > 1:
                from repro.api.islands import IslandGroup

                self._islands = IslandGroup.restore(
                    self, checkpoint["state"]
                )
            else:
                self._restore_state(checkpoint["state"])
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint state is malformed: {type(exc).__name__}: {exc}"
            ) from exc


def solver_options(solver: Any) -> dict:
    """Constructor options of a solver, as JSON-serialisable scalars.

    Dataclass solvers export every scalar field except ``k`` (the
    checkpoint stores ``k`` separately); anything non-scalar — ablation
    lambdas are rebuilt from the scalars that requested them — is
    dropped.  Non-dataclass solvers export nothing.
    """
    import dataclasses

    if not dataclasses.is_dataclass(solver):
        return {}
    options = {}
    for f in dataclasses.fields(solver):
        if f.name == "k":
            continue
        value = getattr(solver, f.name)
        if isinstance(value, (bool, int, float, str, type(None))):
            options[f.name] = value
    return options


class OneShotSession(SolveSession):
    """Session adapter for direct-construction solvers.

    Linear, spectral, multilevel and percolation compute their partition
    in one piece — there is no inner loop to suspend.  The session runs
    them as a single-iteration program: a checkpoint taken *before* the
    iteration captures only the rng state (resume recomputes the whole
    construction from it, bit-identically); a checkpoint taken after
    carries the finished assignment.
    """

    def __init__(
        self,
        solver: Any,
        request: SolveRequest,
        checkpoint: dict | None = None,
        build: Callable[[SolveRequest, np.random.Generator], Partition]
        | None = None,
    ) -> None:
        self._build = build or (
            lambda req, rng: solver.partition(req.graph, seed=rng)
        )
        self._result: Partition | None = None
        super().__init__(solver, request, checkpoint)

    def _setup(self) -> None:
        self._set_phase("construct")

    def _advance(self) -> bool:
        self._result = self._build(self.request, self.rng)
        return False

    def _best_partition(self) -> Partition | None:
        return self._result

    def _export_state(self) -> dict:
        assignment = None
        if self._result is not None:
            assignment = [int(p) for p in self._result.assignment]
        return {"assignment": assignment}

    def _restore_state(self, state: dict) -> None:
        assignment = state.get("assignment")
        if assignment is not None:
            self._result = Partition(
                self.request.graph, np.asarray(assignment, dtype=np.int64)
            )
