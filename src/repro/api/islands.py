"""Island-model execution of iterative solve sessions.

An :class:`IslandGroup` turns one :class:`~repro.api.session.SolveSession`
into N independent *islands* — child sessions of the same solver, each
seeded from its own ``SeedSequence.spawn`` lineage — that evolve in
rounds.  One parent session iteration is one round: every running island
advances ``migration_interval`` of its own iterations, newly found
incumbents are surfaced as parent ``incumbent`` events (tagged with the
island that found them), and the islands then trade incumbents around a
ring — island ``i`` adopts island ``i-1``'s best when it is strictly
better — recorded as one structured ``migration`` event.  The final
answer is a deterministic reduce: the best objective over islands, ties
broken by island index.

Two execution modes, selected by ``SolveRequest.island_jobs``:

* **serial** (``island_jobs=1``, default) — islands are stepped
  round-robin in the parent process.
* **parallel** (``island_jobs>1``) — each round, running islands are
  checkpointed, shipped to a process pool whose workers attach the graph
  once through a shared-memory :class:`~repro.graph.GraphHandle`, stepped
  there, and rebuilt in the parent from the returned checkpoints.
  Checkpoints are bit-exact for graphs with integral edge weights (the
  session determinism contract), so serial and parallel runs of the same
  request produce identical partitions and event streams.

Because incumbent events are emitted by *scanning* island bests once per
round (not by forwarding child events as they happen), the parent event
stream is a pure function of the request — independent of execution mode
and worker scheduling.
"""

from __future__ import annotations

import concurrent.futures
import math
from typing import TYPE_CHECKING, Any

from repro.common.exceptions import CheckpointError
from repro.common.rng import spawn_rngs
from repro.api.events import EVENT_MIGRATION
from repro.api.request import (
    STATUS_RUNNING,
    Budget,
    SolveRequest,
)
from repro.graph.graph import Graph
from repro.graph.store import GraphHandle, GraphStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import SolveSession
    from repro.partition.partition import Partition

__all__ = ["IslandGroup"]

#: Strict-improvement threshold shared with the solver steppers.
_EPS = 1e-12


# ---------------------------------------------------------------------------
# Island pool plumbing (parallel mode).  Workers attach the graph once via
# the initializer; each task ships a solver (small dataclass), a child
# checkpoint and a step count, and returns the advanced checkpoint.
# ---------------------------------------------------------------------------
_ISLAND_GRAPH: Graph | None = None


def _island_worker_init(graph_ref: GraphHandle | Graph) -> None:
    global _ISLAND_GRAPH
    if isinstance(graph_ref, GraphHandle):
        _ISLAND_GRAPH = Graph.from_handle(graph_ref)
    else:
        _ISLAND_GRAPH = graph_ref


def _island_step(
    solver: Any, request_args: dict, checkpoint: dict, steps: int
) -> dict:
    assert _ISLAND_GRAPH is not None, "island worker used before init"
    request = SolveRequest(graph=_ISLAND_GRAPH, **request_args)
    session = solver.start(request, checkpoint=checkpoint)
    for _ in range(steps):
        if not session.step():
            break
    return session.checkpoint()


class IslandGroup:
    """N child sessions evolving one request, with ring migration.

    Build with :meth:`create` (fresh) or :meth:`restore` (from the
    ``state`` block of an island checkpoint); the parent session routes
    its ``advance``/``best``/``checkpoint`` hooks here whenever
    ``request.islands > 1``.
    """

    def __init__(
        self,
        parent: "SolveSession",
        children: list["SolveSession"],
        interval: int,
        jobs: int,
    ) -> None:
        self.parent = parent
        self.children = children
        self.interval = interval
        self.jobs = jobs
        self.rounds = 0
        #: Best objective ever seen across islands (parent incumbent
        #: events fire on strict improvements of this).
        self.tracked_best: float | None = None
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        self._store: GraphStore | None = None

    # -- construction ------------------------------------------------------
    @staticmethod
    def _child_request_args(request: SolveRequest) -> dict:
        """Child-request kwargs (everything but graph and seed).

        Children run unbudgeted and silent: the parent owns budgets,
        heartbeats and events; islands only ever advance through
        :meth:`advance`, ``interval`` iterations at a time.
        """
        return {
            "k": request.k,
            "objective": request.objective,
            "balance_tolerance": request.balance_tolerance,
            "budget": Budget(),
            "name": request.name,
            "heartbeat_interval": None,
            "islands": 1,
        }

    @classmethod
    def create(cls, parent: "SolveSession") -> "IslandGroup":
        """Spawn ``request.islands`` fresh children off the parent rng.

        Child seeds come from ``parent.rng.spawn`` — recorded in the
        parent's encoded rng state (``n_children_spawned``), so a
        checkpointed parent never re-spawns overlapping lineages.
        """
        request = parent.request
        children: list["SolveSession"] = []
        for rng in spawn_rngs(parent.rng, request.islands):
            child_request = SolveRequest(
                graph=request.graph,
                seed=rng,
                **cls._child_request_args(request),
            )
            children.append(parent.solver.start(child_request))
        return cls(
            parent,
            children,
            interval=request.migration_interval,
            jobs=request.island_jobs,
        )

    @classmethod
    def restore(cls, parent: "SolveSession", state: dict) -> "IslandGroup":
        """Rebuild the group from :meth:`export_state` output."""
        request = parent.request
        children_state = state.get("children")
        if (
            not isinstance(children_state, list)
            or len(children_state) != request.islands
        ):
            found = (
                len(children_state)
                if isinstance(children_state, list) else "no"
            )
            raise CheckpointError(
                f"island checkpoint carries {found} children, the request "
                f"asks for islands={request.islands}"
            )
        children = []
        for child_checkpoint in children_state:
            child_request = SolveRequest(
                graph=request.graph,
                seed=None,  # the child's restored rng is authoritative
                **cls._child_request_args(request),
            )
            children.append(
                parent.solver.start(child_request, checkpoint=child_checkpoint)
            )
        group = cls(
            parent,
            children,
            interval=request.migration_interval,
            jobs=request.island_jobs,
        )
        group.rounds = int(state.get("rounds", 0))
        tracked = state.get("tracked_best")
        group.tracked_best = None if tracked is None else float(tracked)
        return group

    # -- one parent iteration ----------------------------------------------
    def advance(self) -> bool:
        """One round: step every running island ``interval`` iterations,
        surface new incumbents, run the migration ring.  Returns True
        while any island still has work."""
        if self.jobs > 1 and self._running_count() > 1:
            self._advance_parallel()
        else:
            self._advance_serial()
        self.rounds += 1
        self._scan_incumbents()
        adopted = self._migrate()
        self.parent._emit(
            EVENT_MIGRATION,
            round=self.rounds,
            interval=self.interval,
            ring=[
                child._best_objective() for child in self.children
            ],
            adopted=adopted,
        )
        more = any(
            child.status == STATUS_RUNNING for child in self.children
        )
        if not more:
            self.close()
        return more

    def _running_count(self) -> int:
        return sum(
            1 for child in self.children if child.status == STATUS_RUNNING
        )

    def _advance_serial(self) -> None:
        for child in self.children:
            for _ in range(self.interval):
                if not child.step():
                    break

    def _advance_parallel(self) -> None:
        pool = self._ensure_pool()
        request = self.parent.request
        request_args = self._child_request_args(request)
        futures: dict[int, concurrent.futures.Future] = {}
        for i, child in enumerate(self.children):
            if child.status != STATUS_RUNNING:
                continue
            futures[i] = pool.submit(
                _island_step,
                self.parent.solver,
                request_args,
                child.checkpoint(),
                self.interval,
            )
        # Rebuild in island order so any worker exception surfaces
        # deterministically; the returned checkpoints are exact, making
        # this round bit-identical to the serial mode.
        for i, future in futures.items():
            advanced = future.result()
            child_request = SolveRequest(
                graph=request.graph, seed=None, **request_args
            )
            self.children[i] = self.parent.solver.start(
                child_request, checkpoint=advanced
            )

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            graph = self.parent.request.graph
            self._store = GraphStore.create(graph)
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.jobs, len(self.children)),
                initializer=_island_worker_init,
                initargs=(self._store.handle,),
            )
        return self._pool

    # -- incumbents & migration --------------------------------------------
    def _scan_incumbents(self) -> None:
        """Emit a parent ``incumbent`` event per island whose best now
        beats everything seen before (scan order = island order, so the
        stream is independent of execution mode)."""
        for i, child in enumerate(self.children):
            objective = child._best_objective()
            if objective is None:
                continue
            if (
                self.tracked_best is None
                or objective < self.tracked_best - _EPS
            ):
                self.tracked_best = float(objective)
                self.parent._incumbent_improved(float(objective), island=i)

    def _migrate(self) -> list[int]:
        """Ring migration over a simultaneous snapshot of island bests.

        Island ``i`` adopts island ``(i-1) % n``'s incumbent when the
        donor's objective is strictly better than its own; finished
        islands donate but never receive.  Returns the adopting island
        indices (the ``migration`` event payload).
        """
        n = len(self.children)
        if n < 2:
            return []
        snapshot: list[tuple[float | None, "Partition | None"]] = [
            (child._best_objective(), child._best_partition())
            for child in self.children
        ]
        adopted = []
        for i, child in enumerate(self.children):
            if child.status != STATUS_RUNNING:
                continue
            donor_objective, donor_partition = snapshot[(i - 1) % n]
            if donor_partition is None or donor_objective is None:
                continue
            mine = snapshot[i][0]
            if mine is None or donor_objective < mine - _EPS:
                child._adopt_incumbent(donor_partition, donor_objective)
                adopted.append(i)
        return adopted

    # -- reduce -------------------------------------------------------------
    def _winner(self) -> "SolveSession | None":
        """Deterministic reduce: argmin (objective, island index)."""
        winner = None
        winner_objective = math.inf
        for child in self.children:
            partition = child._best_partition()
            if partition is None:
                continue
            objective = child._best_objective()
            objective = math.inf if objective is None else float(objective)
            if winner is None or objective < winner_objective:
                winner = child
                winner_objective = objective
        return winner

    def best_partition(self) -> "Partition | None":
        winner = self._winner()
        return winner._best_partition() if winner is not None else None

    def best_objective(self) -> float | None:
        winner = self._winner()
        return winner._best_objective() if winner is not None else None

    def progress_payload(self) -> dict:
        return {
            "islands": len(self.children),
            "islands_running": self._running_count(),
            "migration_round": self.rounds,
        }

    # -- checkpoint ----------------------------------------------------------
    def export_state(self) -> dict:
        """Full island state: per-child checkpoints plus ring bookkeeping
        (JSON-serialisable; round-trips bit-exactly mid-migration)."""
        return {
            "rounds": self.rounds,
            "tracked_best": self.tracked_best,
            "children": [child.checkpoint() for child in self.children],
        }

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Tear down the island pool and its shared graph segment
        (idempotent; called automatically when the last island stops)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._store is not None:
            self._store.destroy()
            self._store = None
