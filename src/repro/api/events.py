"""Structured solve events and observers.

A :class:`~repro.api.session.SolveSession` narrates its progress as a
stream of :class:`SolveEvent` records delivered synchronously to every
registered observer (``session.subscribe(callback)``).  Event types:

=============  ==============================================================
``start``      ``run()`` entered (payload: method, k, ``resumed`` flag)
``phase``      the solver moved to a new phase (payload: ``phase`` name)
``iteration``  one session iteration finished (payload: per-family progress)
``heartbeat``  periodic liveness signal (payload: ``phase``); emitted at most
               once per ``SolveRequest.heartbeat_interval`` seconds of solve
               time, at iteration boundaries — the portfolio runner's
               straggler reaper keys off these
``incumbent``  the best-known solution improved (``objective`` is its value;
               island sessions add ``island``, the island that found it)
``migration``  an island-model session completed one incumbent migration
               ring (payload: ``round``, ``interval``, ``ring`` — per-island
               best objectives after migration — and ``adopted``, the island
               indices that took their neighbour's incumbent)
``checkpoint`` :meth:`~repro.api.session.SolveSession.checkpoint` was taken
``pause``      ``run()`` returned early (budget exhausted or cancelled)
``done``       the solver finished naturally; the session is complete
=============  ==============================================================

Observers are plain callables ``(SolveEvent) -> None``; an exception
raised by an observer aborts the run and propagates (the engine uses the
same convention for ``on_record``).  :class:`JsonlEventWriter` is the
bundled file observer behind ``repro solve --events events.jsonl``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

__all__ = [
    "SolveEvent",
    "JsonlEventWriter",
    "EVENT_START",
    "EVENT_PHASE",
    "EVENT_ITERATION",
    "EVENT_HEARTBEAT",
    "EVENT_INCUMBENT",
    "EVENT_MIGRATION",
    "EVENT_CHECKPOINT",
    "EVENT_PAUSE",
    "EVENT_DONE",
]

EVENT_START = "start"
EVENT_PHASE = "phase"
EVENT_ITERATION = "iteration"
EVENT_HEARTBEAT = "heartbeat"
EVENT_INCUMBENT = "incumbent"
EVENT_MIGRATION = "migration"
EVENT_CHECKPOINT = "checkpoint"
EVENT_PAUSE = "pause"
EVENT_DONE = "done"


@dataclass
class SolveEvent:
    """One progress record emitted by a solve session.

    Attributes
    ----------
    type:
        One of the event-type constants above.
    iteration:
        Session iteration count when the event fired.
    elapsed:
        Seconds of solve time so far (cumulative across resumes).
    objective:
        Best-known objective value at emission time (``None`` before the
        first solution exists).
    payload:
        Event-type-specific extras (JSON-serialisable scalars only).
    """

    type: str
    iteration: int
    elapsed: float
    objective: float | None = None
    payload: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Flat dict view (the ``--events`` JSONL row format)."""
        row = {
            "event": self.type,
            "iteration": self.iteration,
            "elapsed": round(self.elapsed, 6),
            "objective": self.objective,
        }
        row.update(self.payload)
        return row


class JsonlEventWriter:
    """Observer that appends one JSON line per event to a file.

    Usable directly as a ``session.subscribe`` target and as a context
    manager::

        with JsonlEventWriter("events.jsonl") as writer:
            session.subscribe(writer)
            session.run()

    The file is opened lazily on the first event so a run that emits
    nothing leaves no empty artifact behind.

    ``fsync=True`` additionally syncs the file to disk after every
    event: the mode the solve service runs its per-job event logs in, so
    a server killed outright (SIGKILL, power loss) loses no events the
    OS had merely buffered.  The default stays flush-only — durable
    enough for live tailing, with no per-event syscall cost.

    ``append=True`` continues an existing stream instead of truncating
    it on the first event — how the service extends a job's event log
    across solve slices (and across server restarts).
    """

    def __init__(
        self, path: str | Path, fsync: bool = False, append: bool = False
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._fh: IO[str] | None = None
        self._opened = append
        self.events_written = 0

    def __call__(self, event: SolveEvent) -> None:
        if self._fh is None:
            # Truncate on the very first open only: an event arriving
            # after close() (e.g. the checkpoint event of a post-run
            # checkpoint) must append, not wipe the stream.
            self._fh = self.path.open("a" if self._opened else "w")
            self._opened = True
        self._fh.write(json.dumps(event.as_dict()) + "\n")
        # Flush per event: the stream exists to be tailed live, and a
        # preempted/killed run must not lose its trailing events.
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.events_written += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlEventWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
