"""The request/report halves of the unified solver API.

:class:`SolveRequest` is the one value a caller hands to any solver:
graph, part count, objective, balance tolerance, seed and budgets.
:class:`SolveReport` is what a finished (or paused) session hands back:
the best partition plus status, iteration/time accounting and the full
paper-criteria metrics.  Both are plain dataclasses so they ship across
process boundaries and serialise into JSON reports.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.common.exceptions import ConfigurationError
from repro.common.rng import SeedLike
from repro.graph.graph import Graph
from repro.partition.metrics import PartitionReport
from repro.partition.partition import Partition

__all__ = [
    "Budget",
    "SolveRequest",
    "SolveReport",
    "parse_duration",
    "STATUS_RUNNING",
    "STATUS_DONE",
    "STATUS_CANCELLED",
]

#: Session status values (``SolveSession.status`` / ``SolveReport.status``).
STATUS_RUNNING = "running"      # preemptible: more work remains
STATUS_DONE = "done"            # the solver finished naturally
STATUS_CANCELLED = "cancelled"  # ``cancel()`` was honoured

_DURATION_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*(ms|s|m|h)?\s*$")
_DURATION_UNITS = {"ms": 1e-3, "s": 1.0, "m": 60.0, "h": 3600.0, None: 1.0}


def parse_duration(text: str | float | int | None) -> float | None:
    """Parse ``"2s"`` / ``"500ms"`` / ``"1.5m"`` / plain seconds.

    ``None`` passes through (no budget).  Raises
    :class:`~repro.common.exceptions.ConfigurationError` on junk so CLI
    typos fail with the accepted grammar in the message.
    """
    if text is None:
        return None
    if isinstance(text, (int, float)):
        value = float(text)
    else:
        match = _DURATION_RE.match(text)
        if match is None:
            raise ConfigurationError(
                f"cannot parse duration {text!r} "
                "(expected e.g. '2', '2s', '500ms', '1.5m', '1h')"
            )
        value = float(match.group(1)) * _DURATION_UNITS[match.group(2)]
    if value <= 0:
        raise ConfigurationError(f"duration must be > 0, got {value}")
    return value


@dataclass
class Budget:
    """Cooperative resource limits for one solve session.

    Both limits are *session-total*: a resumed session keeps counting
    from the checkpointed iteration and elapsed time, so
    ``Budget(max_iterations=100)`` means 100 iterations across every
    ``run()`` call and resume, not per call.

    Attributes
    ----------
    max_seconds:
        Wall-clock ceiling; the session pauses (status stays
        ``running``) at the first iteration boundary past it.
    max_iterations:
        Session-iteration ceiling, same pause semantics.
    """

    max_seconds: float | None = None
    max_iterations: int | None = None

    def __post_init__(self) -> None:
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ConfigurationError(
                f"max_seconds must be > 0, got {self.max_seconds}"
            )
        if self.max_iterations is not None and self.max_iterations < 0:
            raise ConfigurationError(
                f"max_iterations must be >= 0, got {self.max_iterations}"
            )

    def bounded(self) -> bool:
        """True when either limit is set."""
        return self.max_seconds is not None or self.max_iterations is not None

    def as_dict(self) -> dict:
        return {
            "max_seconds": self.max_seconds,
            "max_iterations": self.max_iterations,
        }


@dataclass
class SolveRequest:
    """Everything a solver needs to produce one partition.

    Attributes
    ----------
    graph:
        The CSR graph to partition.
    k:
        Target number of parts.
    objective:
        Criterion for the metaheuristics (``"cut"``/``"ncut"``/
        ``"mcut"``); ``None`` keeps each solver's configured default.
        Direct constructions (linear, spectral, multilevel, percolation)
        ignore it, exactly as their constructors always have.
    balance_tolerance:
        Advisory part-weight imbalance bound carried into solvers that
        support one (the multilevel refiner); ``None`` keeps defaults.
    seed:
        Anything :func:`~repro.common.rng.ensure_rng` accepts.
    budget:
        Session-level cooperative limits (see :class:`Budget`).
    name:
        Free-form instance label carried into reports and events.
    heartbeat_interval:
        Seconds of solve time between ``heartbeat`` events (emitted at
        iteration boundaries, so single-iteration constructions emit
        none mid-solve).  ``None`` disables heartbeats.
    islands:
        Number of independent islands the iterative solver families
        (annealing, ant colony, fusion–fission) evolve within this one
        solve, each from its own ``SeedSequence.spawn`` lineage.  ``1``
        (the default) is the plain sequential path, bit-identical to
        requests predating this field.  With ``islands > 1`` one session
        iteration advances every island ``migration_interval`` of its
        own iterations, then migrates incumbents around a ring
        (``migration`` events).  Solvers without island support
        (``supports_islands`` is false) reject such requests.
    migration_interval:
        Island iterations between incumbent migrations (only meaningful
        when ``islands > 1``).
    island_jobs:
        Worker processes evolving islands in parallel.  ``1`` (default)
        steps the islands round-robin in-process; for graphs with
        integral edge weights both modes produce bit-identical results
        (islands travel between intervals as checkpoints, which are
        exact — see the session determinism contract).
    """

    graph: Graph
    k: int
    objective: str | None = None
    balance_tolerance: float | None = None
    seed: SeedLike = None
    budget: Budget = field(default_factory=Budget)
    name: str = "graph"
    heartbeat_interval: float | None = 1.0
    islands: int = 1
    migration_interval: int = 10
    island_jobs: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if self.k > self.graph.num_vertices:
            raise ConfigurationError(
                f"k={self.k} exceeds the vertex count "
                f"({self.graph.num_vertices})"
            )
        if self.objective is not None:
            self.objective = str(self.objective).strip().lower()
        if self.balance_tolerance is not None and self.balance_tolerance <= 0:
            raise ConfigurationError(
                f"balance_tolerance must be > 0, got {self.balance_tolerance}"
            )
        if self.budget is None:
            self.budget = Budget()
        if self.heartbeat_interval is not None and self.heartbeat_interval <= 0:
            raise ConfigurationError(
                "heartbeat_interval must be > 0 (or None to disable), "
                f"got {self.heartbeat_interval}"
            )
        if self.islands < 1:
            raise ConfigurationError(
                f"islands must be >= 1, got {self.islands}"
            )
        if self.migration_interval < 1:
            raise ConfigurationError(
                f"migration_interval must be >= 1, got {self.migration_interval}"
            )
        if self.island_jobs < 1:
            raise ConfigurationError(
                f"island_jobs must be >= 1, got {self.island_jobs}"
            )

    def as_dict(self) -> dict:
        """Request metadata for reports/events (no graph payload)."""
        return {
            "name": self.name,
            "num_vertices": self.graph.num_vertices,
            "num_edges": self.graph.num_edges,
            "k": self.k,
            "objective": self.objective,
            "balance_tolerance": self.balance_tolerance,
            "budget": self.budget.as_dict(),
            "heartbeat_interval": self.heartbeat_interval,
            "islands": self.islands,
            "migration_interval": self.migration_interval,
        }


@dataclass
class SolveReport:
    """Outcome of (so far) one solve session.

    Attributes
    ----------
    method:
        Canonical solver name that produced the result.
    status:
        ``"done"``, ``"running"`` (paused on a budget) or
        ``"cancelled"``.
    objective:
        Name of the criterion ``objective_value`` is measured on.
    objective_value:
        Best-known value (lower is better; ``inf`` when no solution
        exists yet).
    partition:
        The best :class:`~repro.partition.Partition` (``None`` only when
        a bounded run paused before producing any solution).
    metrics:
        Full paper-criteria :class:`~repro.partition.metrics
        .PartitionReport` of that partition.
    iterations, seconds, events:
        Session accounting (cumulative across resumes).
    """

    method: str
    status: str
    objective: str
    objective_value: float = math.inf
    partition: Partition | None = None
    metrics: PartitionReport | None = None
    iterations: int = 0
    seconds: float = 0.0
    events: int = 0

    @property
    def assignment(self) -> np.ndarray | None:
        """Part id per vertex of the best partition (``None`` if none)."""
        if self.partition is None:
            return None
        return self.partition.assignment

    @property
    def ok(self) -> bool:
        """True when the report carries a partition."""
        return self.partition is not None

    def as_dict(self, include_assignment: bool = False) -> dict:
        """JSON-serialisable view (schema ``repro-solve-report/v1``)."""
        from repro import __version__

        payload: dict[str, Any] = {
            "schema": "repro-solve-report/v1",
            "version": __version__,
            "method": self.method,
            "status": self.status,
            "objective": self.objective,
            "objective_value": (
                self.objective_value
                if math.isfinite(self.objective_value) else None
            ),
            "num_parts": (
                self.partition.num_parts if self.partition is not None else 0
            ),
            "iterations": self.iterations,
            "seconds": self.seconds,
            "events": self.events,
            "metrics": self.metrics.as_dict() if self.metrics else None,
        }
        if include_assignment and self.partition is not None:
            payload["assignment"] = [int(p) for p in self.partition.assignment]
        return payload
