"""`repro.api` — the unified solver API.

One stable, introspectable, interruptible programmatic surface over all
six partitioner families (fusion–fission, multilevel, simulated
annealing, ant colony, spectral/linear, percolation):

* :class:`Solver` protocol — ``solver.start(request) -> SolveSession``;
  every registered partitioner implements it (the legacy
  ``partition(graph, seed)`` entry points remain as deprecated shims).
* :class:`SolveRequest` / :class:`SolveReport` — the request/response
  dataclasses (graph, k, objective, balance tolerance, seed, budgets).
* :class:`SolveSession` — ``step()``/``run()`` execution with structured
  :class:`SolveEvent` streaming to observers, cooperative wall-clock and
  iteration budgets, ``cancel()``, and JSON ``checkpoint()`` /
  :func:`resume` that reproduces the uninterrupted run deterministically.
* :func:`solve` — the one-call convenience entry point; surfaced on the
  command line as ``repro solve``.

Quickstart
----------
>>> from repro.api import Budget, solve
>>> from repro.graph import weighted_caveman_graph
>>> report = solve(weighted_caveman_graph(4, 6), k=4, method="multilevel",
...                seed=0)
>>> report.status, report.partition.num_parts
('done', 4)

Streaming, budgets and checkpointing::

    from repro.api import JsonlEventWriter, SolveRequest, get_solver

    solver = get_solver("fusion-fission", k=32, max_steps=4000)
    session = solver.start(SolveRequest(graph, k=32, seed=0))
    session.subscribe(JsonlEventWriter("events.jsonl"))
    report = session.run(max_seconds=2.0)     # pauses when out of budget
    if report.status == "running":            # preempted, not finished
        ck = session.checkpoint()             # JSON-serialisable dict
        ...                                   # ship it anywhere
        session = resume(graph, ck)           # later / elsewhere
        report = session.run()                # identical final partition

See ``docs/api.md`` for the full protocol, event and checkpoint formats.
"""

from repro.api.events import (
    EVENT_CHECKPOINT,
    EVENT_DONE,
    EVENT_HEARTBEAT,
    EVENT_INCUMBENT,
    EVENT_ITERATION,
    EVENT_MIGRATION,
    EVENT_PAUSE,
    EVENT_PHASE,
    EVENT_START,
    JsonlEventWriter,
    SolveEvent,
)
from repro.api.facade import Solver, as_solver, get_solver, resume, solve
from repro.api.islands import IslandGroup
from repro.api.request import (
    STATUS_CANCELLED,
    STATUS_DONE,
    STATUS_RUNNING,
    Budget,
    SolveReport,
    SolveRequest,
    parse_duration,
)
from repro.api.session import (
    CHECKPOINT_SCHEMA,
    OneShotSession,
    SolveSession,
    decode_rng,
    encode_rng,
)

__all__ = [
    "Solver",
    "SolveRequest",
    "SolveReport",
    "SolveSession",
    "SolveEvent",
    "Budget",
    "OneShotSession",
    "IslandGroup",
    "JsonlEventWriter",
    "solve",
    "resume",
    "get_solver",
    "as_solver",
    "parse_duration",
    "encode_rng",
    "decode_rng",
    "CHECKPOINT_SCHEMA",
    "STATUS_RUNNING",
    "STATUS_DONE",
    "STATUS_CANCELLED",
    "EVENT_START",
    "EVENT_PHASE",
    "EVENT_ITERATION",
    "EVENT_HEARTBEAT",
    "EVENT_INCUMBENT",
    "EVENT_MIGRATION",
    "EVENT_CHECKPOINT",
    "EVENT_PAUSE",
    "EVENT_DONE",
]
