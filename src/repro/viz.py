"""Dependency-free SVG rendering of partitioned graphs and quality traces.

The repository has no plotting dependency; this module hand-writes SVG so
the examples can produce *visual* artefacts (the ATC block map, the
Figure-1 curves) that open in any browser.

* :func:`render_partition_svg` — vertices at given 2-D positions coloured
  by part, edges drawn under them (cut edges highlighted).
* :func:`render_traces_svg` — log-x quality-vs-time polylines with
  horizontal reference lines (the Figure-1 layout).
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np

from repro.graph.graph import Graph

__all__ = ["part_color", "render_partition_svg", "render_traces_svg"]


def part_color(part: int) -> str:
    """A stable, well-spread hex colour for a part id (golden-angle hue)."""
    hue = (part * 137.50776405) % 360.0
    # HSL -> RGB with fixed saturation/lightness.
    c = 0.55
    x = c * (1 - abs((hue / 60.0) % 2 - 1))
    m = 0.80 - c / 2
    sector = int(hue // 60) % 6
    rgb = [
        (c, x, 0.0), (x, c, 0.0), (0.0, c, x),
        (0.0, x, c), (x, 0.0, c), (c, 0.0, x),
    ][sector]
    r, g, b = (int(round((v + m) * 255)) for v in rgb)
    return f"#{r:02x}{g:02x}{b:02x}"


def _scale_points(points: np.ndarray, width: float, height: float,
                  margin: float) -> np.ndarray:
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    span = np.maximum(hi - lo, 1e-12)
    unit = (points - lo) / span
    out = np.empty_like(unit)
    out[:, 0] = margin + unit[:, 0] * (width - 2 * margin)
    out[:, 1] = height - margin - unit[:, 1] * (height - 2 * margin)
    return out


def render_partition_svg(
    graph: Graph,
    positions: np.ndarray,
    assignment: np.ndarray,
    path: str | Path | None = None,
    width: int = 900,
    height: int = 700,
    vertex_radius: float = 3.0,
    max_edges: int = 20000,
) -> str:
    """Render a partitioned graph as an SVG string (optionally to a file).

    Cut edges are drawn light grey, internal edges in (a faded shade of)
    their part colour; vertices sit on top coloured by part.
    """
    positions = np.asarray(positions, dtype=np.float64)
    assignment = np.asarray(assignment, dtype=np.int64)
    n = graph.num_vertices
    if positions.shape != (n, 2):
        raise ValueError(f"positions must be ({n}, 2)")
    if assignment.shape != (n,):
        raise ValueError(f"assignment must be ({n},)")
    pts = _scale_points(positions, width, height, margin=20.0)
    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    u, v, _w = graph.edge_arrays()
    if u.shape[0] > max_edges:
        keep = np.linspace(0, u.shape[0] - 1, max_edges).astype(np.int64)
        u, v = u[keep], v[keep]
    for a, b in zip(u, v):
        x1, y1 = pts[a]
        x2, y2 = pts[b]
        if assignment[a] == assignment[b]:
            color = part_color(int(assignment[a]))
            opacity = 0.25
        else:
            color = "#999999"
            opacity = 0.35
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{color}" stroke-opacity="{opacity}" stroke-width="0.7"/>'
        )
    for i in range(n):
        x, y = pts[i]
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{vertex_radius}" '
            f'fill="{part_color(int(assignment[i]))}"/>'
        )
    parts.append("</svg>")
    svg = "\n".join(parts)
    if path is not None:
        Path(path).write_text(svg)
    return svg


def render_traces_svg(
    traces: dict[str, tuple[list[float], list[float]]],
    references: dict[str, float] | None = None,
    path: str | Path | None = None,
    width: int = 760,
    height: int = 480,
    title: str = "quality vs time",
) -> str:
    """Render quality-vs-time polylines (log-x) as an SVG string.

    Parameters
    ----------
    traces:
        ``{label: (times, values)}`` — times in seconds (> 0).
    references:
        Optional ``{label: value}`` horizontal dashed lines (the best
        spectral/multilevel levels of Figure 1).
    """
    margin = 55.0
    all_t = [t for ts, _ in traces.values() for t in ts if t > 0]
    all_v = list(
        v for _, vs in traces.values() for v in vs if math.isfinite(v)
    )
    if references:
        all_v.extend(references.values())
    if not all_t or not all_v:
        raise ValueError("traces must contain at least one finite sample")
    t_lo, t_hi = min(all_t), max(max(all_t), min(all_t) * 1.01)
    v_lo, v_hi = min(all_v), max(max(all_v), min(all_v) + 1e-9)
    pad = 0.08 * (v_hi - v_lo)
    v_lo, v_hi = v_lo - pad, v_hi + pad

    def sx(t: float) -> float:
        frac = (math.log10(t) - math.log10(t_lo)) / (
            math.log10(t_hi) - math.log10(t_lo)
        )
        return margin + frac * (width - 2 * margin)

    def sy(v: float) -> float:
        frac = (v - v_lo) / (v_hi - v_lo)
        return height - margin - frac * (height - 2 * margin)

    out: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
        f'font-family="sans-serif" font-size="14">{title}</text>',
        # axes
        f'<line x1="{margin}" y1="{height - margin}" x2="{width - margin}" '
        f'y2="{height - margin}" stroke="black"/>',
        f'<line x1="{margin}" y1="{margin}" x2="{margin}" '
        f'y2="{height - margin}" stroke="black"/>',
    ]
    # Log-decade x ticks.
    decade = math.floor(math.log10(t_lo))
    while 10**decade <= t_hi:
        t = 10.0**decade
        if t >= t_lo:
            out.append(
                f'<line x1="{sx(t):.1f}" y1="{height - margin}" '
                f'x2="{sx(t):.1f}" y2="{height - margin + 5}" stroke="black"/>'
                f'<text x="{sx(t):.1f}" y="{height - margin + 18}" '
                f'text-anchor="middle" font-family="sans-serif" '
                f'font-size="11">{t:g}s</text>'
            )
        decade += 1
    if references:
        for idx, (label, value) in enumerate(sorted(references.items())):
            y = sy(value)
            out.append(
                f'<line x1="{margin}" y1="{y:.1f}" x2="{width - margin}" '
                f'y2="{y:.1f}" stroke="#555" stroke-dasharray="6,4"/>'
                f'<text x="{width - margin - 4}" y="{y - 4:.1f}" '
                f'text-anchor="end" font-family="sans-serif" '
                f'font-size="11" fill="#555">{label} ({value:.2f})</text>'
            )
    for idx, (label, (times, values)) in enumerate(sorted(traces.items())):
        color = part_color(idx * 7 + 1)
        pairs = [
            (sx(max(t, t_lo)), sy(v))
            for t, v in zip(times, values)
            if math.isfinite(v)
        ]
        if not pairs:
            continue
        points = " ".join(f"{x:.1f},{y:.1f}" for x, y in pairs)
        out.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        lx, ly = pairs[-1]
        out.append(
            f'<text x="{min(lx + 5, width - margin):.1f}" y="{ly:.1f}" '
            f'font-family="sans-serif" font-size="11" '
            f'fill="{color}">{label}</text>'
        )
    out.append("</svg>")
    svg = "\n".join(out)
    if path is not None:
        Path(path).write_text(svg)
    return svg
