"""§2.3 claim benchmark: KL refinement improves spectral/linear partitions
("with local refinement, results are generally 10 to 30% better").

Measures the refinement gain on the ATC instance for the linear and
spectral pipelines; the extra_info records the before/after edge cuts.

Run: ``pytest benchmarks/bench_refinement.py --benchmark-only``
"""

from repro.bench.harness import run_method
from repro.bench.registry import make_partitioner


def _gain(benchmark, graph, k, method, **options):
    raw = run_method("raw", make_partitioner(method, k, **options), graph,
                     seed=2006)
    refined = benchmark.pedantic(
        lambda: run_method(
            "kl", make_partitioner(method, k, refine=True, **options),
            graph, seed=2006,
        ),
        iterations=1,
        rounds=1,
    )
    benchmark.extra_info["cut_before"] = raw.cut
    benchmark.extra_info["cut_after"] = refined.cut
    benchmark.extra_info["mcut_before"] = raw.mcut
    benchmark.extra_info["mcut_after"] = refined.mcut
    improvement = 1.0 - refined.cut / raw.cut if raw.cut > 0 else 0.0
    benchmark.extra_info["cut_improvement"] = round(improvement, 4)
    return raw, refined


def test_kl_on_linear(benchmark, atc_graph, bench_k):
    raw, refined = _gain(benchmark, atc_graph, bench_k, "linear")
    # Index-order partitions of a geometric flow graph are dreadful; the
    # paper's 10-30% is a *floor* here.
    assert refined.cut <= raw.cut


def test_kl_on_spectral_lanczos(benchmark, atc_graph, bench_k):
    raw, refined = _gain(benchmark, atc_graph, bench_k, "spectral",
                         solver="lanczos")
    assert refined.cut <= raw.cut * 1.05  # KL never hurts materially


def test_kl_on_spectral_rqi(benchmark, atc_graph, bench_k):
    raw, refined = _gain(benchmark, atc_graph, bench_k, "spectral",
                         solver="rqi")
    assert refined.cut <= raw.cut * 1.05
