"""Shared fixtures for the benchmark suite.

Benchmarks run on a reduced-scale ATC instance by default so that
``pytest benchmarks/ --benchmark-only`` completes in minutes.  The
full-scale paper reproduction (762 vertices, generous metaheuristic
budgets) is what ``python -m repro.bench.table1`` / ``figure1`` run; set
``REPRO_BENCH_FULL=1`` to force the benchmarks onto the full instance too.
"""

import os

import pytest

from repro.atc.europe import core_area_graph

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: per-metaheuristic wall-clock budget inside the pytest-benchmark suite
META_BUDGET = 20.0 if FULL else 3.0
#: k for the suite (the paper's 32 on the full instance)
BENCH_K = 32 if FULL else 8


@pytest.fixture(scope="session")
def atc_graph():
    """The synthetic core-area flow graph (shared across benchmarks)."""
    return core_area_graph(seed=2006)


@pytest.fixture(scope="session")
def bench_k():
    return BENCH_K


@pytest.fixture(scope="session")
def meta_budget():
    return META_BUDGET
