"""§6 claim benchmark: one fusion–fission run yields good partitions for a
*range* of part counts around the target ("from 27 to 38 partitions" for
k = 32 in the paper).

Run: ``pytest benchmarks/bench_ksweep.py --benchmark-only``
Full-scale CLI: ``python -m repro.bench.ksweep``
"""

from repro.bench.ksweep import run_ksweep


def test_fusion_fission_k_range(benchmark, atc_graph, bench_k, meta_budget):
    profile = benchmark.pedantic(
        lambda: run_ksweep(
            k=bench_k, graph=atc_graph, seed=2006,
            max_steps=10**9, time_budget=meta_budget,
        ),
        iterations=1,
        rounds=1,
    )
    near = {kk: v for kk, v in profile.items() if abs(kk - bench_k) <= 3}
    benchmark.extra_info["profile"] = {str(k): round(v, 2) for k, v in profile.items()}
    # The sweep must cover a window around the target, not just the target.
    assert bench_k in profile
    assert len(near) >= 3
