"""Micro-benchmarks of the substrates the reproduction is built on.

These keep the performance-critical primitives honest (the hpc-parallel
guides: measure, don't guess): CSR construction, partition bookkeeping,
vertex moves, eigensolvers, percolation floods and coarsening on
paper-scale inputs.

Run: ``pytest benchmarks/bench_substrates.py --benchmark-only``
"""

import numpy as np
import pytest

from repro.graph import grid_graph, laplacian_matrix
from repro.multilevel.coarsening import build_hierarchy
from repro.partition import McutObjective, Partition
from repro.percolation import percolation_bonds
from repro.refine import fm_refine
from repro.spectral import lanczos_smallest


@pytest.fixture(scope="module")
def atc_partition(atc_graph, bench_k):
    rng = np.random.default_rng(0)
    a = rng.integers(0, bench_k, atc_graph.num_vertices)
    a[: bench_k] = np.arange(bench_k)
    return Partition(atc_graph, a)


def test_graph_construction(benchmark, atc_graph):
    u, v, w = atc_graph.edge_arrays()
    from repro.graph import Graph

    benchmark(lambda: Graph.from_arrays(atc_graph.num_vertices, u, v, w))


def test_partition_construction(benchmark, atc_graph, bench_k):
    rng = np.random.default_rng(0)
    a = rng.integers(0, bench_k, atc_graph.num_vertices)
    a[: bench_k] = np.arange(bench_k)
    benchmark(lambda: Partition(atc_graph, a))


def test_vertex_moves(benchmark, atc_partition):
    rng = np.random.default_rng(1)
    n = atc_partition.graph.num_vertices
    k = atc_partition.num_parts

    def do_moves():
        p = atc_partition.copy()
        for _ in range(1000):
            v = int(rng.integers(n))
            t = int(rng.integers(k))
            if p.size[p.part_of(v)] > 1:
                p.move(v, t, allow_empty_source=False)

    benchmark(do_moves)


def test_mcut_delta_evaluation(benchmark, atc_partition):
    obj = McutObjective()
    rng = np.random.default_rng(2)
    n = atc_partition.graph.num_vertices
    k = atc_partition.num_parts

    def do_deltas():
        for _ in range(1000):
            obj.delta_move(
                atc_partition, int(rng.integers(n)), int(rng.integers(k))
            )

    benchmark(do_deltas)


def test_lanczos_fiedler(benchmark, atc_graph):
    lap = laplacian_matrix(atc_graph)
    n = atc_graph.num_vertices
    deflate = np.full((n, 1), 1.0 / np.sqrt(n))
    benchmark(
        lambda: lanczos_smallest(lap, num_eigenpairs=1, deflate=deflate, seed=0)
    )


def test_percolation_flood(benchmark, atc_graph, bench_k):
    rng = np.random.default_rng(3)
    centers = rng.choice(atc_graph.num_vertices, size=bench_k, replace=False)
    benchmark(lambda: percolation_bonds(atc_graph, centers))


def test_coarsening_hierarchy(benchmark, atc_graph):
    benchmark(lambda: build_hierarchy(atc_graph, min_vertices=128, seed=0))


def test_fm_pass_grid(benchmark):
    g = grid_graph(32, 32)
    rng = np.random.default_rng(4)

    def run():
        p = Partition(g, rng.integers(0, 8, 1024))
        fm_refine(p, max_passes=1)

    benchmark(run)
