"""Table 1 reproduction benchmarks: every method row, timed, on the ATC
instance, with the Cut/Ncut/Mcut values attached as extra_info.

Run: ``pytest benchmarks/bench_table1.py --benchmark-only``
Full-scale CLI: ``python -m repro.bench.table1``
"""

import pytest

from repro.bench.harness import run_method
from repro.bench.registry import make_partitioner


def _bench(benchmark, label, partitioner, graph):
    result = benchmark.pedantic(
        lambda: run_method(label, partitioner, graph, seed=2006),
        iterations=1,
        rounds=1,
    )
    benchmark.extra_info["cut"] = result.cut
    benchmark.extra_info["ncut"] = result.ncut
    benchmark.extra_info["mcut"] = result.mcut
    benchmark.extra_info["num_parts"] = result.num_parts
    return result


class TestLinearRows:
    def test_linear_bi(self, benchmark, atc_graph, bench_k):
        _bench(benchmark, "Linear (Bi)",
               make_partitioner("linear", bench_k), atc_graph)

    def test_linear_bi_kl(self, benchmark, atc_graph, bench_k):
        _bench(benchmark, "Linear (Bi, KL)",
               make_partitioner("linear", bench_k, refine=True), atc_graph)

    def test_linear_oct_kl(self, benchmark, atc_graph, bench_k):
        _bench(benchmark, "Linear (Oct, KL)",
               make_partitioner("linear", bench_k, refine=True, arity=8),
               atc_graph)


class TestSpectralRows:
    @pytest.mark.parametrize("solver", ["lanczos", "rqi"])
    @pytest.mark.parametrize("arity", [2, 8])
    @pytest.mark.parametrize("refine", [False, True])
    def test_spectral(self, benchmark, atc_graph, bench_k, solver, arity, refine):
        label = (f"Spectral ({solver}, {'Oct' if arity == 8 else 'Bi'}"
                 f"{', KL' if refine else ''})")
        _bench(
            benchmark, label,
            make_partitioner("spectral", bench_k, solver=solver,
                             arity=arity, refine=refine),
            atc_graph,
        )


class TestMultilevelRows:
    @pytest.mark.parametrize("arity", [2, 8])
    def test_multilevel(self, benchmark, atc_graph, bench_k, arity):
        label = f"Multilevel ({'Oct' if arity == 8 else 'Bi'})"
        _bench(benchmark, label,
               make_partitioner("multilevel", bench_k, arity=arity), atc_graph)


class TestHeuristicRows:
    def test_percolation(self, benchmark, atc_graph, bench_k):
        _bench(benchmark, "Percolation",
               make_partitioner("percolation", bench_k), atc_graph)


class TestMetaheuristicRows:
    def test_simulated_annealing(self, benchmark, atc_graph, bench_k, meta_budget):
        _bench(benchmark, "Simulated annealing",
               make_partitioner("simulated-annealing", bench_k,
                                time_budget=meta_budget),
               atc_graph)

    def test_ant_colony(self, benchmark, atc_graph, bench_k, meta_budget):
        _bench(benchmark, "Ant colony",
               make_partitioner("ant-colony", bench_k,
                                time_budget=meta_budget, iterations=10**9),
               atc_graph)

    def test_fusion_fission(self, benchmark, atc_graph, bench_k, meta_budget):
        _bench(benchmark, "Fusion Fission",
               make_partitioner("fusion-fission", bench_k,
                                time_budget=meta_budget, max_steps=10**9),
               atc_graph)
