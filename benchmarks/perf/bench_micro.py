"""pytest-benchmark wrappers over the perf microbenchmark suite.

Run: ``pytest benchmarks/perf/bench_micro.py --benchmark-only``

Each test times one optimized kernel through pytest-benchmark (so you
get distribution statistics and ``--benchmark-compare``) and asserts the
kernel agrees with its frozen reference implementation — a wrong kernel
fails here no matter how fast it is.  The scale mirrors the tracked
harness (``repro bench perf``): n≈20k by default, n≈2k with
``REPRO_PERF_QUICK=1``.
"""

import os

import numpy as np
import pytest

from repro.bench.perf import _noisy_strips, _unit_geometric
from repro.partition.gains import GainTable
from repro.partition.moves import boundary_vertices
from repro.partition.partition import Partition
from repro.partition.objectives import get_objective
from repro.partition.reference import move_many_reference
from repro.refine.fm import _candidates_from_rows, fm_refine
from repro.refine.reference import fm_refine_reference

QUICK = os.environ.get("REPRO_PERF_QUICK", "") == "1"
N = 2000 if QUICK else 20000
K = 16


@pytest.fixture(scope="module")
def instance():
    graph = _unit_geometric(N, seed=1)
    assignment = _noisy_strips(graph.num_vertices, K, seed=0)
    return graph, assignment


def test_fm_pass(benchmark, instance):
    graph, assignment = instance
    result = benchmark.pedantic(
        lambda: fm_refine(Partition(graph, assignment.copy()), max_passes=1),
        iterations=1, rounds=3,
    )
    p_ref = Partition(graph, assignment.copy())
    ref_gain = fm_refine_reference(p_ref, max_passes=1)
    p_opt = Partition(graph, assignment.copy())
    fm_refine(p_opt, max_passes=1)
    assert np.array_equal(p_opt.assignment, p_ref.assignment)
    assert abs(result - ref_gain) < 1e-6


def test_fm_gain_engine(benchmark, instance):
    graph, assignment = instance
    partition = Partition(graph, assignment.copy())
    boundary = boundary_vertices(partition)
    ideal = float(partition.vertex_weight.sum()) / K
    max_w = max(1.10 * ideal, float(partition.vertex_weight.max()))
    min_w = min(max(0.0, 0.80 * ideal), float(partition.vertex_weight.min()))

    def engine():
        table = GainTable(partition, None)
        table.refresh(boundary, assume_unique=True)
        return _candidates_from_rows(
            partition, table.w_parts[boundary], boundary, max_w, min_w,
            None, None,
        )

    gains, targets, valid = benchmark(engine)
    assert valid.any()
    benchmark.extra_info["boundary_vertices"] = int(boundary.shape[0])


def test_move_many(benchmark, instance):
    graph, assignment = instance
    movers = np.flatnonzero(assignment == 0)[:-1]

    def bulk():
        p = Partition(graph, assignment.copy())
        p.move_many(movers, 1)
        return p

    p_opt = benchmark(bulk)
    p_ref = Partition(graph, assignment.copy())
    move_many_reference(p_ref, movers, 1)
    assert np.array_equal(p_opt.assignment, p_ref.assignment)
    p_opt.check()


def test_objective_delta(benchmark, instance):
    graph, assignment = instance
    partition = Partition(graph, assignment.copy())
    obj = get_objective("mcut")
    targets = np.arange(K)
    rng = np.random.default_rng(0)
    sample = rng.choice(graph.num_vertices, 256, replace=False)

    deltas = benchmark(
        lambda: [
            obj.delta_move_targets(partition, int(v), targets)
            for v in sample
        ]
    )
    v0 = int(sample[0])
    loop = [obj.delta_move(partition, v0, int(t)) for t in targets]
    vec = deltas[0]
    both_nan = np.isnan(loop) & np.isnan(vec)
    assert np.all((np.asarray(loop) == vec) | both_nan)
