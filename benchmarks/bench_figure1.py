"""Figure 1 reproduction benchmark: quality-vs-time traces of the three
metaheuristics against the best spectral/multilevel reference lines.

The benchmark times one budgeted run per metaheuristic and attaches the
improvement trace (Mcut at each new best) plus the reference lines as
extra_info, so a benchmark JSON dump contains everything needed to replot
Figure 1.

Run: ``pytest benchmarks/bench_figure1.py --benchmark-only``
Full-scale CLI: ``python -m repro.bench.figure1 --budget 600``
"""

import pytest

from repro.bench.figure1 import reference_lines, trace_metaheuristic


@pytest.fixture(scope="module")
def refs(atc_graph, bench_k):
    return reference_lines(atc_graph, bench_k, seed=2006)


@pytest.mark.parametrize(
    "method", ["simulated-annealing", "ant-colony", "fusion-fission"]
)
def test_metaheuristic_trace(benchmark, atc_graph, bench_k, meta_budget,
                             refs, method):
    trace = benchmark.pedantic(
        lambda: trace_metaheuristic(
            method, atc_graph, bench_k, budget=meta_budget, seed=2006
        ),
        iterations=1,
        rounds=1,
    )
    assert trace.values, "metaheuristic produced no improvement events"
    benchmark.extra_info["final_mcut"] = trace.values[-1]
    benchmark.extra_info["first_mcut"] = trace.values[0]
    benchmark.extra_info["trace_times"] = [round(t, 3) for t in trace.times]
    benchmark.extra_info["trace_values"] = [round(v, 3) for v in trace.values]
    benchmark.extra_info["best_spectral"] = refs["spectral"]
    benchmark.extra_info["best_multilevel"] = refs["multilevel"]
    # Figure-1 shape assertion: the metaheuristic improves over time.
    assert trace.values[-1] <= trace.values[0]
