"""Ablation benchmarks for fusion–fission's design choices (DESIGN.md §4).

Each ablation disables one ingredient of the method and records the Mcut
achieved under the same budget, quantifying what the ingredient buys:

* binding-energy scaling off  (``scale_energy=False``)
* law learning off            (``learn_laws=False``)
* percolation fission vs the cheap alternative is covered indirectly by
  the operators' unit tests; here we ablate the part-count headroom
  (``max_parts_factor=1.0`` pins k, removing the method's signature move).

Run: ``pytest benchmarks/bench_ablation.py --benchmark-only``
"""

from repro.fusionfission.partitioner import FusionFissionPartitioner
from repro.partition.metrics import evaluate_partition


def _run(benchmark, graph, k, budget, **options):
    ff = FusionFissionPartitioner(
        k=k, time_budget=budget, max_steps=10**9, **options
    )
    partition = benchmark.pedantic(
        lambda: ff.partition(graph, seed=2006), iterations=1, rounds=1
    )
    report = evaluate_partition(partition)
    benchmark.extra_info["mcut"] = round(report.mcut, 3)
    benchmark.extra_info["cut"] = round(report.cut, 1)
    benchmark.extra_info["options"] = {
        key: value for key, value in options.items()
    }
    return report


def test_full_method(benchmark, atc_graph, bench_k, meta_budget):
    _run(benchmark, atc_graph, bench_k, meta_budget)


def test_no_energy_scaling(benchmark, atc_graph, bench_k, meta_budget):
    _run(benchmark, atc_graph, bench_k, meta_budget, scale_energy=False)


def test_no_law_learning(benchmark, atc_graph, bench_k, meta_budget):
    _run(benchmark, atc_graph, bench_k, meta_budget, learn_laws=False)


def test_pinned_part_count(benchmark, atc_graph, bench_k, meta_budget):
    # max_parts_factor=1.0 clamps k at the target: fission is only allowed
    # when a fusion just freed headroom — the "changing number of
    # partitions" ingredient is effectively removed.
    _run(benchmark, atc_graph, bench_k, meta_budget, max_parts_factor=1.0)


def test_wide_part_headroom(benchmark, atc_graph, bench_k, meta_budget):
    _run(benchmark, atc_graph, bench_k, meta_budget, max_parts_factor=2.0)
