#!/usr/bin/env python3
"""Docs smoke check: every relative markdown link must resolve.

Scans README.md and docs/*.md for ``[text](target)`` links, ignores
absolute URLs and in-page anchors, and verifies each relative target
exists in the repository.  Exit code 1 (listing the offenders) when any
link is broken — run by the CI docs job and by the tier-1 test suite.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def doc_files() -> list[Path]:
    """README plus every markdown file under docs/."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def broken_links() -> list[tuple[Path, str]]:
    """``(source file, target)`` for every unresolvable relative link."""
    broken = []
    for doc in doc_files():
        for target in LINK_RE.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not (doc.parent / path).exists():
                broken.append((doc, target))
    return broken


def main() -> int:
    docs = doc_files()
    if not any(f.name == "README.md" for f in docs):
        print("FAIL: README.md is missing")
        return 1
    bad = broken_links()
    for doc, target in bad:
        print(f"BROKEN: {doc.relative_to(REPO_ROOT)} -> {target}")
    if bad:
        return 1
    print(f"ok: {len(docs)} docs, all relative links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
